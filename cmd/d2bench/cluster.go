package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"d2tree/internal/loadgen"
	"d2tree/internal/monitor"
	"d2tree/internal/server"
	"d2tree/internal/trace"
)

// The tracked live-cluster benchmark. `d2bench -clusterbench` boots a real
// Monitor + MDS cluster over loopback, drives it with the load generator at
// increasing per-client pipeline depths, and appends a labelled entry to a
// JSON trajectory (BENCH_cluster.json at the repo root) — the serving-path
// counterpart of BENCH_replay.json, so RPC/server perf PRs carry measured
// before/after evidence for the paper's Sec. V throughput experiment.

// ClusterMeasurement is one load run at a given pipeline depth, measured
// with the client entry cache off and on (a row pair per depth) and — with
// the cache off — against a WAL-backed cluster (durable=true), so the
// group-commit write path carries a measured cost relative to memory-only.
type ClusterMeasurement struct {
	Name          string  `json:"name"`
	InFlight      int     `json:"inFlight"`
	Batch         int     `json:"batch,omitempty"`
	Readdir       string  `json:"readdir,omitempty"`
	Cache         bool    `json:"cache,omitempty"`
	Durable       bool    `json:"durable,omitempty"`
	Ops           uint64  `json:"ops"`
	Errors        uint64  `json:"errors"`
	ElapsedMS     float64 `json:"elapsedMs"`
	ThroughputOps float64 `json:"throughputOps"`
	MeanUS        int64   `json:"meanUs"`
	P50US         int64   `json:"p50Us"`
	P99US         int64   `json:"p99Us"`
	CacheHitRatio float64 `json:"cacheHitRatio,omitempty"`
}

// ClusterEntry is one labelled run of the cluster suite.
type ClusterEntry struct {
	Label      string               `json:"label"`
	GoMaxProcs int                  `json:"goMaxProcs"`
	Smoke      bool                 `json:"smoke,omitempty"`
	Servers    int                  `json:"servers"`
	Clients    int                  `json:"clients"`
	Events     int                  `json:"events"`
	Profile    string               `json:"profile"`
	Nodes      int                  `json:"nodes"`
	Runs       []ClusterMeasurement `json:"runs"`
}

// clusterBenchConfig fixes the benchmark shape. The smoke variant only
// proves the path executes; real baselines use the full shape.
type clusterBenchConfig struct {
	servers  int
	clients  int
	nodes    int
	events   int
	depths   []int
	batches  []int // compound-frame sizes swept at every depth (1 = classic single-op rows)
	attempts int   // best-of-N per depth, damping scheduler noise
}

func clusterConfig(smoke bool) clusterBenchConfig {
	if smoke {
		return clusterBenchConfig{servers: 2, clients: 4, nodes: 400, events: 1200, depths: []int{1, 4}, batches: []int{1, 4}, attempts: 1}
	}
	return clusterBenchConfig{servers: 3, clients: 48, nodes: 5000, events: 40000, depths: []int{1, 8}, batches: []int{1, 8}, attempts: 2}
}

// benchCluster is one booted Monitor + MDS fleet plus its teardown.
type benchCluster struct {
	mon     *monitor.Monitor
	servers []*server.Server
}

func (c *benchCluster) close() {
	for _, s := range c.servers {
		_ = s.Close()
	}
	if c.mon != nil {
		_ = c.mon.Close()
	}
}

// bootBenchCluster starts a Monitor and cfg.servers MDS processes over
// loopback. A non-empty walRoot puts every MDS in durable mode with a WAL
// directory under it; snapshots are pushed out past the run so the rows
// measure the group-commit append path, not truncation cycles.
func bootBenchCluster(cfg clusterBenchConfig, w *trace.Workload, walRoot string) (*benchCluster, error) {
	mon, err := monitor.New(w.Tree, monitor.Config{
		Addr:    "127.0.0.1:0",
		Servers: cfg.servers,
	})
	if err != nil {
		return nil, err
	}
	if err := mon.Start(); err != nil {
		return nil, err
	}
	c := &benchCluster{mon: mon}
	for i := 0; i < cfg.servers; i++ {
		scfg := server.Config{
			Addr:        "127.0.0.1:0",
			MonitorAddr: mon.Addr(),
		}
		if walRoot != "" {
			scfg.WALDir = filepath.Join(walRoot, fmt.Sprintf("mds%d", i))
			scfg.SnapshotInterval = time.Hour
		}
		srv := server.New(scfg)
		if err := srv.Start(); err != nil {
			c.close()
			return nil, fmt.Errorf("mds %d: %w", i, err)
		}
		c.servers = append(c.servers, srv)
	}
	return c, nil
}

// runShape is one measured load configuration against a booted cluster.
// The zero-ish shape (batch 1, no readdir mix, full event stream) is the
// classic single-op row, so pre-existing trajectory names stay stable.
type runShape struct {
	depth        int
	cacheEntries int
	batch        int           // sub-ops per compound frame; <=1 = single-op RPCs
	readdir      string        // "", "plain", "plus"
	events       []trace.Event // nil = the full workload stream
}

// measureShape drives the booted cluster with one load shape and returns
// the best of cfg.attempts runs.
func measureShape(monAddr string, cfg clusterBenchConfig, w *trace.Workload, shape runShape) (*loadgen.Report, error) {
	events := shape.events
	if events == nil {
		events = w.Events
	}
	var best *loadgen.Report
	for a := 0; a < cfg.attempts; a++ {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			MonitorAddr:  monAddr,
			Clients:      cfg.clients,
			InFlight:     shape.depth,
			Batch:        shape.batch,
			Readdir:      shape.readdir,
			Tree:         w.Tree,
			Events:       events,
			Timeout:      5 * time.Minute,
			Seed:         1,
			CacheEntries: shape.cacheEntries,
		})
		if err != nil {
			return nil, fmt.Errorf("inflight %d batch %d: %w", shape.depth, shape.batch, err)
		}
		if rep.Errors > 0 {
			return nil, fmt.Errorf("inflight %d batch %d: %d/%d ops failed: %s",
				shape.depth, shape.batch, rep.Errors, rep.Ops, rep.ErrorSample)
		}
		if best == nil || rep.ThroughputOps > best.ThroughputOps {
			best = rep
		}
	}
	return best, nil
}

func clusterRow(profile string, cfg clusterBenchConfig, shape runShape, durable bool, best *loadgen.Report) ClusterMeasurement {
	state := "off"
	if shape.cacheEntries > 0 {
		state = "on"
	}
	wal := "off"
	if durable {
		wal = "on"
	}
	name := fmt.Sprintf("Cluster/%s/mds=%d/clients=%d/inflight=%d/cache=%s/wal=%s",
		profile, cfg.servers, cfg.clients, shape.depth, state, wal)
	// Compound-op rows get extra name segments; batch=1 single-op rows keep
	// their historical names so the trajectory stays comparable across PRs.
	batch := shape.batch
	if batch <= 1 {
		batch = 0
	}
	if batch > 0 {
		name += fmt.Sprintf("/batch=%d", batch)
	}
	if shape.readdir != "" {
		name += "/readdir=" + shape.readdir
	}
	return ClusterMeasurement{
		Name:          name,
		InFlight:      shape.depth,
		Batch:         batch,
		Readdir:       shape.readdir,
		Cache:         shape.cacheEntries > 0,
		Durable:       durable,
		Ops:           best.Ops,
		Errors:        best.Errors,
		ElapsedMS:     float64(best.Elapsed.Nanoseconds()) / 1e6,
		ThroughputOps: best.ThroughputOps,
		MeanUS:        best.Latency.Mean.Microseconds(),
		P50US:         best.Latency.P50.Microseconds(),
		P99US:         best.Latency.P99.Microseconds(),
		CacheHitRatio: best.Cache.HitRatio,
	}
}

// runClusterBench measures throughput per depth, first against a
// memory-only cluster (cache off and on), then against a WAL-backed one
// (cache off — the write path is what group commit taxes).
func runClusterBench(label string, smoke bool) (ClusterEntry, error) {
	cfg := clusterConfig(smoke)
	profile := trace.LMBE()
	w, err := trace.BuildWorkload(profile.Scale(cfg.nodes), cfg.events, 1)
	if err != nil {
		return ClusterEntry{}, err
	}

	entry := ClusterEntry{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Smoke:      smoke,
		Servers:    cfg.servers,
		Clients:    cfg.clients,
		Events:     cfg.events,
		Profile:    profile.Name,
		Nodes:      cfg.nodes,
	}

	mem, err := bootBenchCluster(cfg, w, "")
	if err != nil {
		return ClusterEntry{}, err
	}
	// The inflight×batch sweep: every pipeline depth measured at every
	// compound-frame size, cache off and on. batch=1 rows are the
	// historical single-op baselines the batched rows are judged against.
	for _, depth := range cfg.depths {
		for _, cached := range []bool{false, true} {
			var cacheEntries int
			if cached {
				cacheEntries = 4096
			}
			for _, batch := range cfg.batches {
				shape := runShape{depth: depth, cacheEntries: cacheEntries, batch: batch}
				best, err := measureShape(mem.mon.Addr(), cfg, w, shape)
				if err != nil {
					mem.close()
					return ClusterEntry{}, err
				}
				entry.Runs = append(entry.Runs, clusterRow(profile.Name, cfg, shape, false, best))
			}
		}
	}
	// readdirplus vs the N+1 pattern it replaces: one row pair at depth 1,
	// cache off, over a quarter of the stream (each listing event fans out
	// into a full directory scan, so the plain row is many real RPCs).
	listEvents := w.Events[:max(1, cfg.events/4)]
	for _, mode := range []string{"plain", "plus"} {
		shape := runShape{depth: 1, batch: 1, readdir: mode, events: listEvents}
		best, err := measureShape(mem.mon.Addr(), cfg, w, shape)
		if err != nil {
			mem.close()
			return ClusterEntry{}, err
		}
		entry.Runs = append(entry.Runs, clusterRow(profile.Name, cfg, shape, false, best))
	}
	mem.close()

	walRoot, err := os.MkdirTemp("", "d2bench-wal-")
	if err != nil {
		return ClusterEntry{}, err
	}
	defer func() { _ = os.RemoveAll(walRoot) }()
	dur, err := bootBenchCluster(cfg, w, walRoot)
	if err != nil {
		return ClusterEntry{}, err
	}
	defer dur.close()
	// The WAL-backed sweep shows what a compound frame's single
	// group-commit window buys on the durable write path.
	for _, depth := range cfg.depths {
		for _, batch := range cfg.batches {
			shape := runShape{depth: depth, batch: batch}
			best, err := measureShape(dur.mon.Addr(), cfg, w, shape)
			if err != nil {
				return ClusterEntry{}, err
			}
			entry.Runs = append(entry.Runs, clusterRow(profile.Name, cfg, shape, true, best))
		}
	}
	return entry, nil
}

// writeClusterEntry appends entry to the JSON trajectory at path (stdout
// when path is empty), oldest first — the same accumulation discipline as
// BENCH_replay.json.
func writeClusterEntry(path string, w io.Writer, entry ClusterEntry) error {
	var entries []ClusterEntry
	if path != "" {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			if err := json.Unmarshal(data, &entries); err != nil {
				return fmt.Errorf("existing %s is not a cluster bench trajectory: %w", path, err)
			}
		}
	}
	entries = append(entries, entry)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err := w.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
