// Command d2bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	d2bench -exp table1|table2|fig5|fig6|fig7|fig8|fig9|all [-full] [-seed N]
//	        [-nodes N] [-events N] [-rounds N]
//	d2bench -bench [-benchout BENCH_replay.json] [-benchlabel L] [-benchsmoke]
//	d2bench -clusterbench [-benchout BENCH_cluster.json] [-benchlabel L] [-benchsmoke]
//
// The default configuration is the fast Quick preset; -full switches to the
// paper-scale preset (20k-node namespaces, 200k-op traces, 20 replay
// rounds).
//
// -bench runs the replay-tier benchmark suite and appends a labelled entry
// to the tracked JSON trajectory (see BENCH_replay.json). -clusterbench
// boots a real Monitor + MDS cluster over loopback and measures loadgen
// throughput at increasing pipeline depths, appending to BENCH_cluster.json.
// -cpuprofile and -memprofile capture pprof profiles of whichever mode runs
// — experiments or benchmarks — so perf work profiles the exact path users
// execute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"d2tree/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("d2bench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment id: table1|table2|fig5|fig6|fig7|fig8|fig9|extras|all")
		format     = fs.String("format", "text", "output format for figures: text|csv|json")
		full       = fs.Bool("full", false, "use the paper-scale configuration")
		seed       = fs.Int64("seed", 0, "override random seed")
		nodes      = fs.Int("nodes", 0, "override namespace size")
		events     = fs.Int("events", 0, "override trace length")
		rounds     = fs.Int("rounds", 0, "override replay rounds")
		bench      = fs.Bool("bench", false, "run the replay-tier benchmark suite instead of experiments")
		cluster    = fs.Bool("clusterbench", false, "run the live-cluster throughput benchmark instead of experiments")
		benchOut   = fs.String("benchout", "", "append the benchmark entry to this JSON trajectory file (empty: stdout)")
		benchLabel = fs.String("benchlabel", "dev", "label recorded with the benchmark entry")
		benchSmoke = fs.Bool("benchsmoke", false, "single-pass benchmark timing (CI smoke run)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "d2bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "d2bench: memprofile:", err)
			}
		}()
	}
	if *bench {
		entry, err := runBenchSuite(*benchLabel, *benchSmoke)
		if err != nil {
			return err
		}
		return writeBenchEntry(*benchOut, w, entry)
	}
	if *cluster {
		entry, err := runClusterBench(*benchLabel, *benchSmoke)
		if err != nil {
			return err
		}
		return writeClusterEntry(*benchOut, w, entry)
	}
	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *nodes != 0 {
		cfg.TreeNodes = *nodes
	}
	if *events != 0 {
		cfg.Events = *events
	}
	if *rounds != 0 {
		cfg.Rounds = *rounds
	}

	runners := map[string]func(experiments.Config, io.Writer) error{
		"table1": runTable1,
		"table2": runTable2,
		"fig5":   runFigure(experiments.Fig5, *format),
		"fig6":   runFigure(experiments.Fig6, *format),
		"fig7":   runFigure(experiments.Fig7, *format),
		"fig8":   runFig8,
		"fig9":   runFigure(experiments.Fig9, *format),
		"extras": runExtras,
	}
	if *exp == "all" {
		for _, id := range []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "extras"} {
			if err := runners[id](cfg, w); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return r(cfg, w)
}

func runTable1(cfg experiments.Config, w io.Writer) error {
	rows, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	return experiments.FormatTable1(w, rows)
}

func runTable2(cfg experiments.Config, w io.Writer) error {
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	return experiments.FormatTable2(w, rows)
}

func runFigure(f func(experiments.Config) (*experiments.Figure, error), format string) func(experiments.Config, io.Writer) error {
	return func(cfg experiments.Config, w io.Writer) error {
		fig, err := f(cfg)
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return fig.WriteCSV(w)
		case "json":
			return fig.WriteJSON(w)
		case "text", "":
			return fig.Format(w)
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
}

func runFig8(cfg experiments.Config, w io.Writer) error {
	pts, err := experiments.Fig8(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig8 — L0 and U0 under different GL proportions (DTR)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GL Proportion\tL0 (E-8)\tU0 (E5)\tGL Nodes")
	for _, p := range pts {
		fmt.Fprintf(tw, "%g\t%.4f\t%.4f\t%d\n",
			p.GLProportion, p.L0*1e8, float64(p.U0)/1e5, p.GLNodes)
	}
	return tw.Flush()
}

func runExtras(cfg experiments.Config, w io.Writer) error {
	hit, err := experiments.GLHitRates(cfg)
	if err != nil {
		return err
	}
	if err := experiments.FormatGLHitRates(w, hit); err != nil {
		return err
	}
	fmt.Fprintln(w)
	ren, err := experiments.RenameCost(cfg)
	if err != nil {
		return err
	}
	if err := experiments.FormatRenameCost(w, ren); err != nil {
		return err
	}
	fmt.Fprintln(w)
	rep, err := experiments.ReplicaSweep(cfg)
	if err != nil {
		return err
	}
	return experiments.FormatReplicaSweep(w, rep)
}
