package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"d2tree/internal/monitor"
	"d2tree/internal/obs"
	"d2tree/internal/server"
	"d2tree/internal/trace"
	"d2tree/internal/wire"
)

func startCluster(t *testing.T) string {
	t.Helper()
	w, err := trace.BuildWorkload(trace.LMBE().Scale(500), 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(w.Tree, monitor.Config{Addr: "127.0.0.1:0", Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mon.Close() })
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{
			Addr:              "127.0.0.1:0",
			MonitorAddr:       mon.Addr(),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	return mon.Addr()
}

func TestCtlLookupCreateReaddirStats(t *testing.T) {
	addr := startCluster(t)
	var buf bytes.Buffer
	if err := run([]string{"-monitor", addr, "lookup", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dir /") {
		t.Errorf("lookup output = %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-monitor", addr, "readdir", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(buf.String())) == 0 {
		t.Error("empty root listing")
	}
	child := strings.Fields(buf.String())[0]

	buf.Reset()
	p := "/" + child + "/ctl-made.txt"
	if err := run([]string{"-monitor", addr, "create", p, "file"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "file "+p) {
		t.Errorf("create output = %q", buf.String())
	}

	// When the created path landed in the global layer, replicas learn of
	// it via heartbeats (lease-bounded staleness), so retry briefly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		buf.Reset()
		err := run([]string{"-monitor", addr, "setattr", p, "2048"}, &buf)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "size=2048") {
		t.Errorf("setattr output = %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-monitor", addr, "stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "mds-") != 2 {
		t.Errorf("stats output = %q", buf.String())
	}
}

func TestCtlOpsAndEvents(t *testing.T) {
	addr := startCluster(t)
	var buf bytes.Buffer
	// Drive a couple of ops so histograms are non-empty on a server, and the
	// client_index/heartbeat traffic populates the monitor's.
	if err := run([]string{"-monitor", addr, "lookup", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-monitor", addr, "readdir", "/"}, &buf); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := run([]string{"-monitor", addr, "-json", "ops"}, &buf); err != nil {
		t.Fatal(err)
	}
	var byNode map[string]map[string]wire.LatencySummary
	if err := json.Unmarshal(buf.Bytes(), &byNode); err != nil {
		t.Fatalf("ops -json output not JSON: %v\n%s", err, buf.String())
	}
	mon, ok := byNode["monitor"]
	if !ok {
		t.Fatalf("ops -json missing monitor node: %v", buf.String())
	}
	var monN uint64
	for _, s := range mon {
		monN += s.Count
	}
	if monN == 0 {
		t.Errorf("monitor op histograms all empty: %v", mon)
	}
	var serverN uint64
	for node, ops := range byNode {
		if !strings.HasPrefix(node, "mds-") {
			continue
		}
		for _, s := range ops {
			serverN += s.Count
		}
	}
	if serverN == 0 {
		t.Errorf("no server recorded any op: %v", byNode)
	}

	// Text mode renders one section per node.
	buf.Reset()
	if err := run([]string{"-monitor", addr, "ops"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "monitor") || !strings.Contains(buf.String(), "n=") {
		t.Errorf("ops text output = %q", buf.String())
	}

	// events -json emits one JSON object per line, each with a seq + node.
	buf.Reset()
	if err := run([]string{"-monitor", addr, "-json", "events"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("events -json produced no lines")
	}
	for _, ln := range lines[:min(len(lines), 5)] {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("event line not JSON: %v\n%s", err, ln)
		}
		if ev.Seq == 0 || ev.Node == "" {
			t.Errorf("event missing seq/node: %s", ln)
		}
	}

	buf.Reset()
	if err := run([]string{"-monitor", addr, "events"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "member_join") {
		t.Errorf("events text output missing member_join: %q", buf.String())
	}
}

func TestCtlArgValidation(t *testing.T) {
	addr := startCluster(t)
	for _, args := range [][]string{
		{"-monitor", addr},
		{"-monitor", addr, "lookup"},
		{"-monitor", addr, "create", "/x"},
		{"-monitor", addr, "setattr", "/x", "notanumber"},
		{"-monitor", addr, "unknown-cmd"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCtlRename(t *testing.T) {
	addr := startCluster(t)
	// Find a deep renameable path via readdir walk: take any subtree root's
	// child through stats is overkill; instead create one under a deep dir.
	var buf bytes.Buffer
	if err := run([]string{"-monitor", addr, "readdir", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	child := strings.Fields(buf.String())[0]
	p := "/" + child + "/ctl-rn.txt"
	buf.Reset()
	if err := run([]string{"-monitor", addr, "create", p, "file"}, &buf); err != nil {
		t.Fatal(err)
	}
	// A create that landed in the global layer propagates to replicas via
	// heartbeats, so retry transient not-found; a "re-evaluation" refusal is
	// the designed outcome for global-layer paths.
	deadline := time.Now().Add(3 * time.Second)
	for {
		buf.Reset()
		err := run([]string{"-monitor", addr, "rename", p, "ctl-rn2.txt"}, &buf)
		if err == nil {
			break
		}
		if strings.Contains(err.Error(), "re-evaluation") {
			t.Skip("target landed in the global layer")
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "ctl-rn2.txt") {
		t.Errorf("rename output = %q", buf.String())
	}
}
