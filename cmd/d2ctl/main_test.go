package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"d2tree/internal/monitor"
	"d2tree/internal/server"
	"d2tree/internal/trace"
)

func startCluster(t *testing.T) string {
	t.Helper()
	w, err := trace.BuildWorkload(trace.LMBE().Scale(500), 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(w.Tree, monitor.Config{Addr: "127.0.0.1:0", Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mon.Close() })
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{
			Addr:              "127.0.0.1:0",
			MonitorAddr:       mon.Addr(),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	return mon.Addr()
}

func TestCtlLookupCreateReaddirStats(t *testing.T) {
	addr := startCluster(t)
	var buf bytes.Buffer
	if err := run([]string{"-monitor", addr, "lookup", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dir /") {
		t.Errorf("lookup output = %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-monitor", addr, "readdir", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(buf.String())) == 0 {
		t.Error("empty root listing")
	}
	child := strings.Fields(buf.String())[0]

	buf.Reset()
	p := "/" + child + "/ctl-made.txt"
	if err := run([]string{"-monitor", addr, "create", p, "file"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "file "+p) {
		t.Errorf("create output = %q", buf.String())
	}

	// When the created path landed in the global layer, replicas learn of
	// it via heartbeats (lease-bounded staleness), so retry briefly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		buf.Reset()
		err := run([]string{"-monitor", addr, "setattr", p, "2048"}, &buf)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "size=2048") {
		t.Errorf("setattr output = %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-monitor", addr, "stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "mds-") != 2 {
		t.Errorf("stats output = %q", buf.String())
	}
}

func TestCtlArgValidation(t *testing.T) {
	addr := startCluster(t)
	for _, args := range [][]string{
		{"-monitor", addr},
		{"-monitor", addr, "lookup"},
		{"-monitor", addr, "create", "/x"},
		{"-monitor", addr, "setattr", "/x", "notanumber"},
		{"-monitor", addr, "unknown-cmd"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCtlRename(t *testing.T) {
	addr := startCluster(t)
	// Find a deep renameable path via readdir walk: take any subtree root's
	// child through stats is overkill; instead create one under a deep dir.
	var buf bytes.Buffer
	if err := run([]string{"-monitor", addr, "readdir", "/"}, &buf); err != nil {
		t.Fatal(err)
	}
	child := strings.Fields(buf.String())[0]
	p := "/" + child + "/ctl-rn.txt"
	buf.Reset()
	if err := run([]string{"-monitor", addr, "create", p, "file"}, &buf); err != nil {
		t.Fatal(err)
	}
	// A create that landed in the global layer propagates to replicas via
	// heartbeats, so retry transient not-found; a "re-evaluation" refusal is
	// the designed outcome for global-layer paths.
	deadline := time.Now().Add(3 * time.Second)
	for {
		buf.Reset()
		err := run([]string{"-monitor", addr, "rename", p, "ctl-rn2.txt"}, &buf)
		if err == nil {
			break
		}
		if strings.Contains(err.Error(), "re-evaluation") {
			t.Skip("target landed in the global layer")
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "ctl-rn2.txt") {
		t.Errorf("rename output = %q", buf.String())
	}
}
