// Command d2ctl is the cluster control/demo client: lookup, create,
// setattr, readdir and stats against a running D2-Tree cluster.
//
// Usage:
//
//	d2ctl -monitor 127.0.0.1:7070 lookup /home/a
//	d2ctl -monitor 127.0.0.1:7070 create /home/a/new.txt file
//	d2ctl -monitor 127.0.0.1:7070 setattr /home/a/new.txt 4096
//	d2ctl -monitor 127.0.0.1:7070 rename /home/a/new.txt renamed.txt
//	d2ctl -monitor 127.0.0.1:7070 readdir /home
//	d2ctl -monitor 127.0.0.1:7070 stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"d2tree/internal/client"
	"d2tree/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2ctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("d2ctl", flag.ContinueOnError)
	mon := fs.String("monitor", "127.0.0.1:7070", "monitor address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("need a command: lookup|create|setattr|rename|readdir|stats")
	}
	c, err := client.Connect(client.Config{MonitorAddr: *mon})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()

	switch rest[0] {
	case "lookup":
		if len(rest) != 2 {
			return errors.New("usage: lookup <path>")
		}
		e, err := c.Lookup(rest[1])
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "create":
		if len(rest) != 3 {
			return errors.New("usage: create <path> file|dir")
		}
		kind := wire.EntryFile
		if rest[2] == "dir" {
			kind = wire.EntryDir
		}
		e, err := c.Create(rest[1], kind)
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "setattr":
		if len(rest) != 3 {
			return errors.New("usage: setattr <path> <size>")
		}
		size, err := strconv.ParseInt(rest[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad size %q: %w", rest[2], err)
		}
		e, err := c.SetAttr(rest[1], size, 0o644)
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "rename":
		if len(rest) != 3 {
			return errors.New("usage: rename <path> <newname>")
		}
		e, err := c.Rename(rest[1], rest[2])
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "readdir":
		if len(rest) != 2 {
			return errors.New("usage: readdir <path>")
		}
		names, err := c.Readdir(rest[1])
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(w, n)
		}
	case "stats":
		for _, addr := range c.Servers() {
			st, err := c.Stats(addr)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s ops=%d lookups=%d creates=%d setattrs=%d redirects=%d entries=%d subtrees=%d glv=%d\n",
				st.Server, st.Ops, st.Lookups, st.Creates, st.SetAttrs,
				st.Redirects, st.Entries, st.SubtreeCnt, st.GLVersion)
		}
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
	return nil
}

func printEntry(w io.Writer, e *wire.Entry) {
	kind := "file"
	if e.Kind == wire.EntryDir {
		kind = "dir"
	}
	fmt.Fprintf(w, "%s %s size=%d mode=%o version=%d\n", kind, e.Path, e.Size, e.Mode, e.Version)
}
