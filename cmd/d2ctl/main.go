// Command d2ctl is the cluster control/demo client: lookup, create,
// setattr, readdir and stats against a running D2-Tree cluster.
//
// Usage:
//
//	d2ctl -monitor 127.0.0.1:7070 lookup /home/a
//	d2ctl -monitor 127.0.0.1:7070 create /home/a/new.txt file
//	d2ctl -monitor 127.0.0.1:7070 setattr /home/a/new.txt 4096
//	d2ctl -monitor 127.0.0.1:7070 rename /home/a/new.txt renamed.txt
//	d2ctl -monitor 127.0.0.1:7070 readdir /home
//	d2ctl -monitor 127.0.0.1:7070 stats            # monitor + all servers
//	d2ctl -monitor 127.0.0.1:7070 stats 127.0.0.1:7081  # one server in detail
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"d2tree/internal/client"
	"d2tree/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2ctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("d2ctl", flag.ContinueOnError)
	mon := fs.String("monitor", "127.0.0.1:7070", "monitor address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("need a command: lookup|create|setattr|rename|readdir|stats [addr]")
	}
	c, err := client.Connect(client.Config{MonitorAddr: *mon})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()

	switch rest[0] {
	case "lookup":
		if len(rest) != 2 {
			return errors.New("usage: lookup <path>")
		}
		e, err := c.Lookup(rest[1])
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "create":
		if len(rest) != 3 {
			return errors.New("usage: create <path> file|dir")
		}
		kind := wire.EntryFile
		if rest[2] == "dir" {
			kind = wire.EntryDir
		}
		e, err := c.Create(rest[1], kind)
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "setattr":
		if len(rest) != 3 {
			return errors.New("usage: setattr <path> <size>")
		}
		size, err := strconv.ParseInt(rest[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad size %q: %w", rest[2], err)
		}
		e, err := c.SetAttr(rest[1], size, 0o644)
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "rename":
		if len(rest) != 3 {
			return errors.New("usage: rename <path> <newname>")
		}
		e, err := c.Rename(rest[1], rest[2])
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "readdir":
		if len(rest) != 2 {
			return errors.New("usage: readdir <path>")
		}
		names, err := c.Readdir(rest[1])
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(w, n)
		}
	case "stats":
		// stats <addr> prints one server in detail; bare stats prints the
		// Monitor's coordinator view plus every live server.
		if len(rest) == 2 {
			st, err := c.Stats(rest[1])
			if err != nil {
				return err
			}
			printServerStats(w, st)
			return nil
		}
		ms, err := c.MonitorStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "monitor heartbeats=%d transfers planned=%d done=%d failed=%d reissued=%d glv=%d indexv=%d\n",
			ms.Heartbeats, ms.TransfersPlanned, ms.TransfersDone,
			ms.TransfersFailed, ms.TransfersReissued, ms.GLVersion, ms.IndexVer)
		for _, mem := range ms.Members {
			state := "alive"
			if !mem.Alive {
				state = "dead"
			}
			fmt.Fprintf(w, "member %d %s %s load=%.0f ops=%d\n",
				mem.ID, mem.Addr, state, mem.Load, mem.Ops)
		}
		for _, addr := range c.Servers() {
			st, err := c.Stats(addr)
			if err != nil {
				return err
			}
			printServerStats(w, st)
		}
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
	return nil
}

func printServerStats(w io.Writer, st *wire.StatsResponse) {
	fmt.Fprintf(w, "%s ops=%d lookups=%d creates=%d setattrs=%d redirects=%d entries=%d subtrees=%d glv=%d\n",
		st.Server, st.Ops, st.Lookups, st.Creates, st.SetAttrs,
		st.Redirects, st.Entries, st.SubtreeCnt, st.GLVersion)
	fmt.Fprintf(w, "  rpc calls=%d retries=%d timeouts=%d redials=%d failures=%d hb_misses=%d transfers ok=%d fail=%d\n",
		st.MonRPC.Calls, st.MonRPC.Retries, st.MonRPC.Timeouts,
		st.MonRPC.Redials, st.MonRPC.Failures, st.HeartbeatMisses,
		st.TransferOK, st.TransferFail)
	fmt.Fprintf(w, "  hb_rtt n=%d mean=%dµs p50=%dµs p90=%dµs p99=%dµs max=%dµs\n",
		st.HeartbeatRTT.Count, st.HeartbeatRTT.MeanUS, st.HeartbeatRTT.P50US,
		st.HeartbeatRTT.P90US, st.HeartbeatRTT.P99US, st.HeartbeatRTT.MaxUS)
}

func printEntry(w io.Writer, e *wire.Entry) {
	kind := "file"
	if e.Kind == wire.EntryDir {
		kind = "dir"
	}
	fmt.Fprintf(w, "%s %s size=%d mode=%o version=%d\n", kind, e.Path, e.Size, e.Mode, e.Version)
}
