// Command d2ctl is the cluster control/demo client: lookup, create,
// setattr, readdir, stats, events and ops against a running D2-Tree
// cluster.
//
// Usage:
//
//	d2ctl -monitor 127.0.0.1:7070 lookup /home/a
//	d2ctl -monitor 127.0.0.1:7070 create /home/a/new.txt file
//	d2ctl -monitor 127.0.0.1:7070 setattr /home/a/new.txt 4096
//	d2ctl -monitor 127.0.0.1:7070 rename /home/a/new.txt renamed.txt
//	d2ctl -monitor 127.0.0.1:7070 readdir /home
//	d2ctl -monitor 127.0.0.1:7070 stats            # monitor + all servers
//	d2ctl -monitor 127.0.0.1:7070 stats 127.0.0.1:7081  # one server in detail
//	d2ctl -monitor 127.0.0.1:7070 events           # merged cluster event log
//	d2ctl -monitor 127.0.0.1:7070 -json events     # same, as JSONL (grep a reqId)
//	d2ctl -monitor 127.0.0.1:7070 ops              # per-op latency histograms
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"d2tree/internal/client"
	"d2tree/internal/obs"
	"d2tree/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2ctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("d2ctl", flag.ContinueOnError)
	mon := fs.String("monitor", "127.0.0.1:7070", "monitor address")
	asJSON := fs.Bool("json", false, "emit machine-readable output (events: JSONL; ops: one JSON object)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("need a command: lookup|create|setattr|rename|readdir|stats [addr]|events|ops")
	}
	c, err := client.Connect(client.Config{MonitorAddr: *mon})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()

	switch rest[0] {
	case "lookup":
		if len(rest) != 2 {
			return errors.New("usage: lookup <path>")
		}
		e, err := c.Lookup(rest[1])
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "create":
		if len(rest) != 3 {
			return errors.New("usage: create <path> file|dir")
		}
		kind := wire.EntryFile
		if rest[2] == "dir" {
			kind = wire.EntryDir
		}
		e, err := c.Create(rest[1], kind)
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "setattr":
		if len(rest) != 3 {
			return errors.New("usage: setattr <path> <size>")
		}
		size, err := strconv.ParseInt(rest[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad size %q: %w", rest[2], err)
		}
		e, err := c.SetAttr(rest[1], size, 0o644)
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "rename":
		if len(rest) != 3 {
			return errors.New("usage: rename <path> <newname>")
		}
		e, err := c.Rename(rest[1], rest[2])
		if err != nil {
			return err
		}
		printEntry(w, e)
	case "readdir":
		if len(rest) != 2 {
			return errors.New("usage: readdir <path>")
		}
		names, err := c.Readdir(rest[1])
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(w, n)
		}
	case "stats":
		// stats <addr> prints one server in detail; bare stats prints the
		// Monitor's coordinator view plus every live server.
		if len(rest) == 2 {
			st, err := c.Stats(rest[1])
			if err != nil {
				return err
			}
			printServerStats(w, st)
			return nil
		}
		ms, err := c.MonitorStats()
		if err != nil {
			return err
		}
		journal := "ok"
		if ms.JournalDegraded {
			journal = "DEGRADED"
		}
		fmt.Fprintf(w, "monitor heartbeats=%d transfers planned=%d done=%d failed=%d reissued=%d glv=%d indexv=%d journal=%s\n",
			ms.Heartbeats, ms.TransfersPlanned, ms.TransfersDone,
			ms.TransfersFailed, ms.TransfersReissued, ms.GLVersion, ms.IndexVer, journal)
		for _, mem := range ms.Members {
			state := "alive"
			if !mem.Alive {
				state = "dead"
			}
			fmt.Fprintf(w, "member %d %s %s load=%.0f ops=%d\n",
				mem.ID, mem.Addr, state, mem.Load, mem.Ops)
		}
		for _, addr := range c.Servers() {
			st, err := c.Stats(addr)
			if err != nil {
				return err
			}
			printServerStats(w, st)
		}
	case "events":
		// Merge the Monitor's and every server's event ring, oldest first.
		if len(rest) != 1 {
			return errors.New("usage: events")
		}
		dumps, err := collectDumps(c)
		if err != nil {
			return err
		}
		var events []obs.Event
		for _, d := range dumps {
			if d.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "d2ctl: %s dropped %d events (ring overwrote them)\n", d.Node, d.Dropped)
			}
			events = append(events, d.Events...)
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
		if *asJSON {
			return obs.WriteJSONL(w, events)
		}
		for _, ev := range events {
			printEvent(w, ev)
		}
	case "ops":
		// Per-node, per-op latency histograms (server-side service time).
		if len(rest) != 1 {
			return errors.New("usage: ops")
		}
		dumps, err := collectDumps(c)
		if err != nil {
			return err
		}
		if *asJSON {
			byNode := make(map[string]map[string]wire.LatencySummary, len(dumps))
			for _, d := range dumps {
				byNode[d.Node] = d.Ops
			}
			enc := json.NewEncoder(w)
			return enc.Encode(byNode)
		}
		for _, d := range dumps {
			fmt.Fprintf(w, "%s\n", d.Node)
			ops := make([]string, 0, len(d.Ops))
			for op := range d.Ops {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			for _, op := range ops {
				s := d.Ops[op]
				fmt.Fprintf(w, "  %-15s n=%d mean=%dµs p50=%dµs p90=%dµs p99=%dµs max=%dµs\n",
					op, s.Count, s.MeanUS, s.P50US, s.P90US, s.P99US, s.MaxUS)
			}
		}
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
	return nil
}

// collectDumps fetches the Monitor's observability dump plus one per live
// server, monitor first.
func collectDumps(c *client.Client) ([]*wire.ObsDumpResponse, error) {
	md, err := c.MonitorObsDump(0)
	if err != nil {
		return nil, err
	}
	dumps := []*wire.ObsDumpResponse{md}
	for _, addr := range c.Servers() {
		d, err := c.ObsDump(addr, 0)
		if err != nil {
			return nil, err
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}

func printEvent(w io.Writer, ev obs.Event) {
	ts := time.Unix(0, ev.TS).Format("15:04:05.000")
	fmt.Fprintf(w, "%s %-9s %-9s %-13s", ts, ev.Node, ev.Kind, ev.Op)
	if ev.ReqID != "" {
		fmt.Fprintf(w, " req=%s", ev.ReqID)
	}
	if ev.From != "" {
		fmt.Fprintf(w, " from=%s", ev.From)
	}
	if ev.Path != "" {
		fmt.Fprintf(w, " path=%s", ev.Path)
	}
	if ev.DurUS != 0 {
		fmt.Fprintf(w, " dur=%dµs", ev.DurUS)
	}
	if ev.Detail != "" {
		fmt.Fprintf(w, " (%s)", ev.Detail)
	}
	if ev.Err != "" {
		fmt.Fprintf(w, " err=%q", ev.Err)
	}
	fmt.Fprintln(w)
}

func printServerStats(w io.Writer, st *wire.StatsResponse) {
	fmt.Fprintf(w, "%s ops=%d lookups=%d creates=%d setattrs=%d redirects=%d entries=%d subtrees=%d glv=%d\n",
		st.Server, st.Ops, st.Lookups, st.Creates, st.SetAttrs,
		st.Redirects, st.Entries, st.SubtreeCnt, st.GLVersion)
	fmt.Fprintf(w, "  rpc calls=%d retries=%d timeouts=%d redials=%d failures=%d hb_misses=%d transfers ok=%d fail=%d\n",
		st.MonRPC.Calls, st.MonRPC.Retries, st.MonRPC.Timeouts,
		st.MonRPC.Redials, st.MonRPC.Failures, st.HeartbeatMisses,
		st.TransferOK, st.TransferFail)
	fmt.Fprintf(w, "  hb_rtt n=%d mean=%dµs p50=%dµs p90=%dµs p99=%dµs max=%dµs\n",
		st.HeartbeatRTT.Count, st.HeartbeatRTT.MeanUS, st.HeartbeatRTT.P50US,
		st.HeartbeatRTT.P90US, st.HeartbeatRTT.P99US, st.HeartbeatRTT.MaxUS)
	fmt.Fprintf(w, "  leases granted=%d revalidate hits=%d misses=%d\n",
		st.LeasesGranted, st.RevalidateHits, st.RevalidateMisses)
	fmt.Fprintf(w, "  compound batches=%d sub_ops=%d readdirplus=%d\n",
		st.Batches, st.BatchSubOps, st.ReaddirPlus)
	wal := "ok"
	if st.WalDegraded {
		wal = "DEGRADED"
	}
	fmt.Fprintf(w, "  wal appends=%d flushes=%d snapshots=%d state=%s\n",
		st.WalAppends, st.WalFlushes, st.Snapshots, wal)
	for _, root := range st.Subtrees {
		fmt.Fprintf(w, "  subtree %s\n", root)
	}
}

func printEntry(w io.Writer, e *wire.Entry) {
	kind := "file"
	if e.Kind == wire.EntryDir {
		kind = "dir"
	}
	fmt.Fprintf(w, "%s %s size=%d mode=%o version=%d\n", kind, e.Path, e.Size, e.Mode, e.Version)
}
