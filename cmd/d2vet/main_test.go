package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const dirtyTree = "../../internal/analysis/testdata/lockheld"

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeOnFindings(t *testing.T) {
	code, out, _ := runVet(t, dirtyTree)
	if code != 1 {
		t.Fatalf("exit code %d on a tree with violations, want 1", code)
	}
	if !strings.Contains(out, "[lockheld]") {
		t.Errorf("output missing lockheld diagnostics:\n%s", out)
	}
}

func TestRulesFilter(t *testing.T) {
	// The lockheld tree has no wirecheck violations, so restricting rules
	// makes the same tree pass.
	code, out, _ := runVet(t, "-rules", "wirecheck", dirtyTree)
	if code != 0 {
		t.Fatalf("exit code %d with -rules wirecheck, want 0; output:\n%s", code, out)
	}
}

func TestUnknownRule(t *testing.T) {
	code, _, errb := runVet(t, "-rules", "nosuchrule", dirtyTree)
	if code != 2 {
		t.Fatalf("exit code %d for unknown rule, want 2", code)
	}
	if !strings.Contains(errb, "nosuchrule") {
		t.Errorf("stderr does not name the bad rule: %q", errb)
	}
}

func TestDotDotDotSuffixAccepted(t *testing.T) {
	code, _, _ := runVet(t, dirtyTree+"/...")
	if code != 1 {
		t.Fatalf("exit code %d with /... suffix, want 1", code)
	}
}

func TestListRules(t *testing.T) {
	code, out, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code %d, want 0", code)
	}
	for _, name := range []string{
		"lockheld", "determinism", "wirecheck", "statcheck",
		"codeccheck", "leasecheck", "goroutinecheck",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestRuleAliasSelects(t *testing.T) {
	// -rule is an alias of -rules: selecting only lockheld still fails the
	// dirty tree, while the goroutinecheck-only run passes it.
	code, out, _ := runVet(t, "-rule", "lockheld", dirtyTree)
	if code != 1 || !strings.Contains(out, "[lockheld]") {
		t.Fatalf("-rule lockheld: exit %d, output:\n%s", code, out)
	}
	code, out, _ = runVet(t, "-rule", "goroutinecheck", dirtyTree)
	if code != 0 {
		t.Fatalf("-rule goroutinecheck: exit %d, want 0; output:\n%s", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runVet(t, "-json", dirtyTree)
	if code != 1 {
		t.Fatalf("-json exit code %d on dirty tree, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) == 0 {
		t.Fatal("-json produced no output on a dirty tree")
	}
	for _, line := range lines {
		var d struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Rule == "" || d.Msg == "" {
			t.Errorf("incomplete diagnostic: %q", line)
		}
	}
}

func TestJSONCleanTreeEmpty(t *testing.T) {
	code, out, _ := runVet(t, "-json", "-rules", "wirecheck", dirtyTree)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("-json on a clean run must print nothing, got:\n%s", out)
	}
}

func TestStaleIgnoreWarned(t *testing.T) {
	// The ignore tree's wrongRule directive names determinism, which fires
	// nothing there: on a full run it is stale and warned on stderr (the
	// exit code stays driven by the surviving findings alone).
	ignoreTree := "../../internal/analysis/testdata/ignore"
	code, _, errb := runVet(t, ignoreTree)
	if code != 1 {
		t.Fatalf("exit %d on ignore tree, want 1", code)
	}
	if !strings.Contains(errb, "stale ignore") || !strings.Contains(errb, "determinism") {
		t.Errorf("full run did not warn about the stale determinism directive:\n%s", errb)
	}

	// Scoping: with only lockheld selected, neither the determinism
	// directive (rule did not run) nor the "all" directive (selection
	// incomplete) may be called stale.
	_, _, errb = runVet(t, "-rules", "lockheld", ignoreTree)
	if strings.Contains(errb, "stale ignore") {
		t.Errorf("partial -rules run reported stale ignores:\n%s", errb)
	}
}

func TestSelfCheck(t *testing.T) {
	// The repository itself must stay d2vet-clean: same gate as make lint.
	code, out, errb := runVet(t, "../..")
	if code != 0 {
		t.Fatalf("d2vet is not clean on its own repository (exit %d):\n%s%s", code, out, errb)
	}
}
