package main

import (
	"bytes"
	"strings"
	"testing"
)

const dirtyTree = "../../internal/analysis/testdata/lockheld"

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeOnFindings(t *testing.T) {
	code, out, _ := runVet(t, dirtyTree)
	if code != 1 {
		t.Fatalf("exit code %d on a tree with violations, want 1", code)
	}
	if !strings.Contains(out, "[lockheld]") {
		t.Errorf("output missing lockheld diagnostics:\n%s", out)
	}
}

func TestRulesFilter(t *testing.T) {
	// The lockheld tree has no wirecheck violations, so restricting rules
	// makes the same tree pass.
	code, out, _ := runVet(t, "-rules", "wirecheck", dirtyTree)
	if code != 0 {
		t.Fatalf("exit code %d with -rules wirecheck, want 0; output:\n%s", code, out)
	}
}

func TestUnknownRule(t *testing.T) {
	code, _, errb := runVet(t, "-rules", "nosuchrule", dirtyTree)
	if code != 2 {
		t.Fatalf("exit code %d for unknown rule, want 2", code)
	}
	if !strings.Contains(errb, "nosuchrule") {
		t.Errorf("stderr does not name the bad rule: %q", errb)
	}
}

func TestDotDotDotSuffixAccepted(t *testing.T) {
	code, _, _ := runVet(t, dirtyTree+"/...")
	if code != 1 {
		t.Fatalf("exit code %d with /... suffix, want 1", code)
	}
}

func TestListRules(t *testing.T) {
	code, out, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code %d, want 0", code)
	}
	for _, name := range []string{"lockheld", "determinism", "wirecheck", "statcheck"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestSelfCheck(t *testing.T) {
	// The repository itself must stay d2vet-clean: same gate as make lint.
	code, out, errb := runVet(t, "../..")
	if code != 0 {
		t.Fatalf("d2vet is not clean on its own repository (exit %d):\n%s%s", code, out, errb)
	}
}
