// Command d2vet runs the project-specific static-analysis suite over the
// repository and reports diagnostics in the familiar file:line:col form.
//
// Usage:
//
//	d2vet [-rules lockheld,wirecheck] [-json] [-v] [path]
//
// The path argument is a module root (default "."); the Go-style "./..."
// suffix is accepted and stripped, since the analyzers always walk the whole
// module. -rule is an alias of -rules (both accept comma-separated names and
// may be combined). With -json each finding is printed as one JSON object
// per line — {"file":…,"line":…,"col":…,"rule":…,"msg":…} — for CI to parse
// into annotations; human summaries are suppressed.
//
// Findings can be suppressed in source with
//
//	//d2vet:ignore <rule> <reason>
//
// on the flagged line or the line directly above it; the rule may be "all"
// and the reason is mandatory. Suppressed findings are counted and shown
// with -v. Directives that no longer suppress anything are reported as
// stale-ignore warnings on stderr (scoped to the rules that actually ran);
// they never affect the exit status — delete them.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"d2tree/internal/analysis"
)

// jsonDiag is the machine-readable finding shape emitted under -json.
type jsonDiag struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("d2vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	rule := fs.String("rule", "", "alias of -rules")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (for CI annotation)")
	verbose := fs.Bool("v", false, "list suppressed findings and per-analyzer counts")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: d2vet [flags] [path]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := analysis.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	selection := strings.Trim(strings.Join([]string{*rules, *rule}, ","), ",")
	complete := selection == ""
	if selection != "" {
		byName := map[string]analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		var selected []analysis.Analyzer
		seen := map[string]bool{}
		for _, name := range strings.Split(selection, ",") {
			name = strings.TrimSpace(name)
			if name == "" || seen[name] {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "d2vet: unknown rule %q (use -list to see available rules)\n", name)
				return 2
			}
			seen[name] = true
			selected = append(selected, a)
		}
		analyzers = selected
		complete = len(selected) == len(byName)
	}

	root := "."
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}
	if fs.NArg() == 1 {
		root = strings.TrimSuffix(fs.Arg(0), "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}

	mod, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "d2vet: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	perRule := map[string]int{}
	for _, a := range analyzers {
		found := a.Run(mod)
		perRule[a.Name()] = len(found)
		diags = append(diags, found...)
	}

	directives, malformed := analysis.CollectDirectives(mod)
	diags = append(diags, malformed...)
	kept, suppressed := analysis.Filter(diags, directives)
	analysis.SortDiagnostics(kept)
	analysis.SortDiagnostics(suppressed)

	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	for _, dir := range analysis.Stale(directives, suppressed, ran, complete) {
		fmt.Fprintf(stderr, "d2vet: stale ignore at %s:%d: rule %s suppressed nothing — delete the directive\n",
			dir.File, dir.Line, dir.Rule)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range kept {
			_ = enc.Encode(jsonDiag{
				File: d.Pos.Filename,
				Line: d.Pos.Line,
				Col:  d.Pos.Column,
				Rule: d.Rule,
				Msg:  d.Message,
			})
		}
		if len(kept) > 0 {
			return 1
		}
		return 0
	}

	for _, d := range kept {
		fmt.Fprintln(stdout, d.String())
	}
	if *verbose {
		for _, d := range suppressed {
			fmt.Fprintf(stdout, "suppressed: %s\n", d.String())
		}
		fmt.Fprintf(stdout, "d2vet: %d package(s), %d finding(s), %d suppressed\n",
			len(mod.Pkgs), len(kept), len(suppressed))
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "  %-12s %d\n", a.Name(), perRule[a.Name()])
		}
	}
	if len(kept) > 0 {
		if !*verbose && len(suppressed) > 0 {
			fmt.Fprintf(stdout, "d2vet: %d finding(s), %d suppressed (run with -v to list)\n",
				len(kept), len(suppressed))
		}
		return 1
	}
	return 0
}
