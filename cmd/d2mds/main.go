// Command d2mds runs one metadata server: it joins the cluster through the
// Monitor, receives its global-layer replica and local-layer subtrees, and
// serves metadata operations.
//
// Usage:
//
//	d2mds -addr :7081 -monitor 127.0.0.1:7070
//	d2mds -addr :7081 -monitor 127.0.0.1:7070 -debug-addr 127.0.0.1:6081 -event-log mds.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"d2tree/internal/obs"
	"d2tree/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "d2mds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("d2mds", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "listen address")
		mon       = fs.String("monitor", "127.0.0.1:7070", "monitor address")
		heartbeat = fs.Duration("heartbeat", 500*time.Millisecond, "heartbeat interval")
		dialTO    = fs.Duration("dial-timeout", 2*time.Second, "connection establishment deadline")
		callTO    = fs.Duration("call-timeout", 2*time.Second, "per-RPC deadline")
		lease     = fs.Duration("lease", 2*time.Second, "entry lease granted to client caches (negative = no grants)")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof + expvar + /debug/d2/* on this address (empty = off)")
		eventLog  = fs.String("event-log", "", "append this node's trace events as JSONL to a file (empty = off)")
		walDir    = fs.String("wal-dir", "", "journal namespace mutations to this directory and recover from it on restart (empty = memory-only)")
		snapEvery = fs.Duration("snapshot-interval", 5*time.Second, "namespace snapshot + WAL truncation cadence (needs -wal-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := server.New(server.Config{
		Addr:              *addr,
		MonitorAddr:       *mon,
		HeartbeatInterval: *heartbeat,
		DialTimeout:       *dialTO,
		CallTimeout:       *callTO,
		EntryLease:        *lease,
		WALDir:            *walDir,
		SnapshotInterval:  *snapEvery,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("d2mds %d listening on %s (monitor %s)\n", srv.ID(), srv.Addr(), *mon)

	if *eventLog != "" {
		f, err := os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			_ = srv.Close()
			return err
		}
		fl := obs.NewFlusher(srv.Obs(), f, time.Second)
		defer func() {
			_ = fl.Close()
			_ = f.Close()
		}()
	}
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr, srv.Obs(),
			func() interface{} { return srv.OpLatencies() })
		if err != nil {
			_ = srv.Close()
			return err
		}
		defer func() { _ = ln.Close() }()
		fmt.Printf("d2mds: debug endpoints on http://%s/debug/\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("d2mds: shutting down")
	return srv.Close()
}
