// Command tracegen generates synthetic trace files (and the matching
// namespace snapshot) for one of the paper's workload profiles.
//
// Usage:
//
//	tracegen -profile DTR -nodes 20000 -events 200000 -seed 1 \
//	         -out dtr.trace [-tree dtr.ns]
package main

import (
	"flag"
	"fmt"
	"os"

	"d2tree/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		profile = fs.String("profile", "DTR", "trace profile (DTR|LMBE|RA)")
		nodes   = fs.Int("nodes", 20000, "namespace size")
		events  = fs.Int("events", 200000, "number of operations")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "", "trace output file (required)")
		treeOut = fs.String("tree", "", "optional namespace snapshot output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	p, err := trace.ProfileByName(*profile)
	if err != nil {
		return err
	}
	w, err := trace.BuildWorkload(p.Scale(*nodes), *events, *seed)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.Write(f, p.Name, w.Events); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d events (%s) to %s\n", len(w.Events), p.Name, *out)

	if *treeOut != "" {
		tf, err := os.Create(*treeOut)
		if err != nil {
			return err
		}
		if err := w.Tree.WriteSnapshot(tf); err != nil {
			_ = tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d-node namespace snapshot to %s\n", w.Tree.Len(), *treeOut)
	}
	mix := trace.CountMix(w.Events)
	fmt.Printf("op mix: read %.2f%% write %.2f%% update %.2f%%\n",
		mix.Read*100, mix.Write*100, mix.Update*100)
	return nil
}
