package main

import (
	"os"
	"path/filepath"
	"testing"

	"d2tree/internal/namespace"
	"d2tree/internal/trace"
)

func TestRunWritesTraceAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.trace")
	treePath := filepath.Join(dir, "out.ns")
	err := run([]string{
		"-profile", "RA", "-nodes", "800", "-events", "2000", "-seed", "5",
		"-out", tracePath, "-tree", treePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	name, events, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if name != "RA" || len(events) != 2000 {
		t.Errorf("trace = %q with %d events", name, len(events))
	}

	tf, err := os.Open(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tf.Close() }()
	tree, err := namespace.ReadSnapshot(tf)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 800 {
		t.Errorf("tree nodes = %d", tree.Len())
	}
	// Every event must reference a live node.
	for _, ev := range events[:50] {
		if tree.Node(ev.Node) == nil {
			t.Fatalf("event references missing node %d", ev.Node)
		}
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run([]string{"-profile", "DTR"}); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestRunUnknownProfile(t *testing.T) {
	if err := run([]string{"-profile", "XX", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown profile accepted")
	}
}
