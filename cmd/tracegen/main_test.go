package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"d2tree/internal/namespace"
	"d2tree/internal/trace"
)

func TestRunWritesTraceAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.trace")
	treePath := filepath.Join(dir, "out.ns")
	err := run([]string{
		"-profile", "RA", "-nodes", "800", "-events", "2000", "-seed", "5",
		"-out", tracePath, "-tree", treePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	name, events, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if name != "RA" || len(events) != 2000 {
		t.Errorf("trace = %q with %d events", name, len(events))
	}

	tf, err := os.Open(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tf.Close() }()
	tree, err := namespace.ReadSnapshot(tf)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 800 {
		t.Errorf("tree nodes = %d", tree.Len())
	}
	// Every event must reference a live node.
	for _, ev := range events[:50] {
		if tree.Node(ev.Node) == nil {
			t.Fatalf("event references missing node %d", ev.Node)
		}
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run([]string{"-profile", "DTR"}); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestRunUnknownProfile(t *testing.T) {
	if err := run([]string{"-profile", "XX", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestRunReproducible pins the determinism contract: the same seed must
// produce byte-identical trace and snapshot files run-to-run, for every
// profile, and a different seed must actually change the trace.
func TestRunReproducible(t *testing.T) {
	gen := func(profile string, seed, dir string) (traceBytes, treeBytes []byte) {
		t.Helper()
		tracePath := filepath.Join(dir, "out.trace")
		treePath := filepath.Join(dir, "out.ns")
		err := run([]string{
			"-profile", profile, "-nodes", "500", "-events", "1500", "-seed", seed,
			"-out", tracePath, "-tree", treePath,
		})
		if err != nil {
			t.Fatal(err)
		}
		traceBytes, err = os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		treeBytes, err = os.ReadFile(treePath)
		if err != nil {
			t.Fatal(err)
		}
		return traceBytes, treeBytes
	}

	for _, profile := range []string{"DTR", "LMBE", "RA"} {
		t.Run(profile, func(t *testing.T) {
			tr1, ns1 := gen(profile, "42", t.TempDir())
			tr2, ns2 := gen(profile, "42", t.TempDir())
			if !bytes.Equal(tr1, tr2) {
				t.Error("same seed produced different trace files")
			}
			if !bytes.Equal(ns1, ns2) {
				t.Error("same seed produced different namespace snapshots")
			}
			tr3, _ := gen(profile, "43", t.TempDir())
			if bytes.Equal(tr1, tr3) {
				t.Error("different seeds produced identical traces")
			}
		})
	}
}
