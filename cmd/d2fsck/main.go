// Command d2fsck verifies a running D2-Tree cluster: starting at the root
// it walks the whole namespace through the client library (Readdir +
// Lookup), checking that every reachable path resolves, that directory
// listings are complete and consistent, and reporting per-server placement
// statistics.
//
// Usage:
//
//	d2fsck -monitor 127.0.0.1:7070 [-maxpaths 100000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"d2tree/internal/client"
	"d2tree/internal/wire"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "d2fsck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run walks the cluster and returns exit code 0 (clean) or 1 (inconsistent).
func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("d2fsck", flag.ContinueOnError)
	var (
		mon      = fs.String("monitor", "127.0.0.1:7070", "monitor address")
		maxPaths = fs.Int("maxpaths", 1_000_000, "walk at most this many paths")
		verbose  = fs.Bool("v", false, "print every problem path")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	c, err := client.Connect(fsckClientConfig(*mon))
	if err != nil {
		return 2, err
	}
	defer func() { _ = c.Close() }()

	var (
		walked, dirs, files, problems int
		queue                         = []string{"/"}
	)
	reportProblem := func(format string, args ...interface{}) {
		problems++
		if *verbose {
			fmt.Fprintf(w, "PROBLEM: "+format+"\n", args...)
		}
	}
	for len(queue) > 0 && walked < *maxPaths {
		path := queue[0]
		queue = queue[1:]
		walked++

		e, err := c.Lookup(path)
		if err != nil {
			reportProblem("lookup %s: %v", path, err)
			continue
		}
		if e.Path != path {
			reportProblem("lookup %s returned entry for %s", path, e.Path)
			continue
		}
		if e.Kind != wire.EntryDir {
			files++
			continue
		}
		dirs++
		names, err := c.Readdir(path)
		if err != nil {
			reportProblem("readdir %s: %v", path, err)
			continue
		}
		prefix := path + "/"
		if path == "/" {
			prefix = "/"
		}
		for _, name := range names {
			queue = append(queue, prefix+name)
		}
	}

	fmt.Fprintf(w, "walked %d paths (%d dirs, %d files), %d problem(s)\n",
		walked, dirs, files, problems)
	fmt.Fprintln(w, "per-server placement:")
	// Cross-check subtree ownership: after a crash-recovery or failover,
	// every local-layer root must be claimed by exactly one server.
	claims := make(map[string][]string)
	for _, addr := range c.Servers() {
		st, err := c.Stats(addr)
		if err != nil {
			return 2, fmt.Errorf("stats %s: %w", addr, err)
		}
		wal := ""
		if st.WalDegraded {
			wal = " wal=DEGRADED"
		}
		fmt.Fprintf(w, "  %s: entries=%d subtrees=%d glVersion=%d redirects=%d%s\n",
			st.Server, st.Entries, st.SubtreeCnt, st.GLVersion, st.Redirects, wal)
		for _, root := range st.Subtrees {
			claims[root] = append(claims[root], st.Server)
		}
	}
	for root, owners := range claims {
		if len(owners) > 1 {
			reportProblem("subtree %s owned by %d servers: %v", root, len(owners), owners)
		}
	}
	if problems > 0 {
		fmt.Fprintf(w, "total %d problem(s)\n", problems)
		return 1, nil
	}
	return 0, nil
}

// fsckClientConfig builds the walker's client configuration. The entry
// cache is forced off: a verification pass answered from cached leases
// would verify the cache, not the cluster, so every Lookup and Readdir must
// hit a server even if client defaults ever grow a cache-on default.
func fsckClientConfig(mon string) client.Config {
	return client.Config{
		MonitorAddr:  mon,
		Name:         "d2fsck",
		CacheEntries: 0,
	}
}
