package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"d2tree/internal/monitor"
	"d2tree/internal/server"
	"d2tree/internal/trace"
)

func startCluster(t *testing.T) (*monitor.Monitor, *trace.Workload) {
	t.Helper()
	w, err := trace.BuildWorkload(trace.LMBE().Scale(600), 2500, 13)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(w.Tree, monitor.Config{Addr: "127.0.0.1:0", Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mon.Close() })
	for i := 0; i < 3; i++ {
		srv := server.New(server.Config{
			Addr:              "127.0.0.1:0",
			MonitorAddr:       mon.Addr(),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	return mon, w
}

func TestFsckCleanCluster(t *testing.T) {
	mon, w := startCluster(t)
	var buf bytes.Buffer
	code, err := run([]string{"-monitor", mon.Addr(), "-v"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "0 problem(s)") {
		t.Errorf("output = %s", out)
	}
	// The walk must reach (at least) every namespace node; paths created
	// only in the GL of the monitor may add more.
	var walked, dirs, files, problems int
	if _, err := fmt.Sscanf(out, "walked %d paths (%d dirs, %d files), %d problem(s)",
		&walked, &dirs, &files, &problems); err != nil {
		t.Fatalf("cannot parse output %q: %v", out, err)
	}
	if walked < w.Tree.Len() {
		t.Errorf("walked %d < namespace size %d", walked, w.Tree.Len())
	}
	if strings.Count(out, "mds-") != 3 {
		t.Errorf("expected 3 per-server lines:\n%s", out)
	}
}

func TestFsckMaxPaths(t *testing.T) {
	mon, _ := startCluster(t)
	var buf bytes.Buffer
	code, err := run([]string{"-monitor", mon.Addr(), "-maxpaths", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d: %s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "walked 10 paths") {
		t.Errorf("output = %s", buf.String())
	}
}

func TestFsckBadMonitor(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"-monitor", "127.0.0.1:1"}, &buf); err == nil {
		t.Error("dead monitor accepted")
	}
}

// TestFsckForcesCacheOff pins the verification contract: the walker's
// client config must have the entry cache disabled, whatever defaults the
// client library grows, so every Lookup/Readdir hits a server.
func TestFsckForcesCacheOff(t *testing.T) {
	cfg := fsckClientConfig("127.0.0.1:7070")
	if cfg.CacheEntries != 0 {
		t.Errorf("fsck client CacheEntries = %d, want 0 (cache must be off for verification)", cfg.CacheEntries)
	}
	if cfg.CacheLease != 0 {
		t.Errorf("fsck client CacheLease = %v, want 0", cfg.CacheLease)
	}
	if cfg.MonitorAddr != "127.0.0.1:7070" {
		t.Errorf("monitor addr %q not threaded through", cfg.MonitorAddr)
	}
}

func TestFsckRejectsUnknownFlag(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-cache", "on"}, &buf)
	if err == nil {
		t.Error("unknown flag accepted")
	}
	if code != 2 {
		t.Errorf("exit code %d, want 2 for usage errors", code)
	}
}
