package d2tree

import (
	"fmt"
	"io"
	"strconv"
	"testing"

	"d2tree/internal/core"
	"d2tree/internal/experiments"
	"d2tree/internal/metrics"
	"d2tree/internal/partition"
	"d2tree/internal/sim"
	"d2tree/internal/trace"
)

// benchConfig shrinks the experiment configuration so every table/figure
// bench completes in seconds per iteration while exercising the identical
// code path as `d2bench -full`.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.TreeNodes = 2000
	cfg.Events = 10000
	cfg.Rounds = 2
	cfg.MList = []int{5, 15, 30}
	return cfg
}

// --- One bench per table and figure of the paper's evaluation ---

// BenchmarkTable1Datasets regenerates Table I.
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.FormatTable1(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2OpMix regenerates Table II.
func BenchmarkTable2OpMix(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.FormatTable2(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Throughput regenerates Fig. 5 (throughput vs cluster size,
// three traces × five schemes).
func BenchmarkFig5Throughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Locality regenerates Fig. 6 (Eq. 1 locality).
func BenchmarkFig6Locality(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Balance regenerates Fig. 7 (Eq. 2 balance after replay
// rounds with rebalancing).
func BenchmarkFig7Balance(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Constraints regenerates Fig. 8 (L0/U0 vs GL proportion).
func BenchmarkFig8Constraints(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9GLBalance regenerates Fig. 9 (balance vs cluster size under
// four GL proportions).
func BenchmarkFig9GLBalance(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches for the design choices called out in DESIGN.md ---

func ablationWorkload(b *testing.B) *trace.Workload {
	b.Helper()
	w, err := trace.BuildWorkload(trace.LMBE().Scale(4000), 30000, 7)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkAblationAllocator compares mirror division against greedy LPT on
// the same subtree set, reporting the resulting balance variance of each.
func BenchmarkAblationAllocator(b *testing.B) {
	w := ablationWorkload(b)
	split, err := core.SplitProportion(w.Tree, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	caps := partition.Capacities(8, 1)
	b.Run("MirrorDivide", func(b *testing.B) {
		var variance float64
		for i := 0; i < b.N; i++ {
			alloc, err := core.MirrorDivide(split.Subtrees, caps, core.AllocConfig{})
			if err != nil {
				b.Fatal(err)
			}
			loads := core.AllocationLoads(split.Subtrees, alloc, 8)
			variance, _ = metrics.BalanceVariance(loads, caps)
		}
		b.ReportMetric(variance, "loadvar")
	})
	b.Run("GreedyLPT", func(b *testing.B) {
		var variance float64
		for i := 0; i < b.N; i++ {
			alloc, err := core.GreedyLPT(split.Subtrees, caps)
			if err != nil {
				b.Fatal(err)
			}
			loads := core.AllocationLoads(split.Subtrees, alloc, 8)
			variance, _ = metrics.BalanceVariance(loads, caps)
		}
		b.ReportMetric(variance, "loadvar")
	})
}

// BenchmarkAblationSampling sweeps the DKW sample size used by mirror
// division, reporting the balance variance each sample budget achieves.
func BenchmarkAblationSampling(b *testing.B) {
	w := ablationWorkload(b)
	split, err := core.SplitProportion(w.Tree, 0.05) // more, smaller subtrees
	if err != nil {
		b.Fatal(err)
	}
	caps := partition.Capacities(8, 1)
	for _, sample := range []int{0, 16, 64, 256} {
		name := "exact"
		if sample > 0 {
			name = "sample" + strconv.Itoa(sample)
		}
		b.Run(name, func(b *testing.B) {
			var variance float64
			for i := 0; i < b.N; i++ {
				alloc, err := core.MirrorDivide(split.Subtrees, caps,
					core.AllocConfig{SampleSize: sample, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				loads := core.AllocationLoads(split.Subtrees, alloc, 8)
				variance, _ = metrics.BalanceVariance(loads, caps)
			}
			b.ReportMetric(variance, "loadvar")
		})
	}
}

// BenchmarkAblationSubtreeGranularity compares D2-Tree's intact subtrees
// against a finer-grained variant (larger GL ⇒ smaller local subtrees),
// reporting throughput: intactness trades some balance for fewer jumps.
func BenchmarkAblationSubtreeGranularity(b *testing.B) {
	w := ablationWorkload(b)
	cm := sim.DefaultCostModel()
	for _, prop := range []float64{0.002, 0.01, 0.05} {
		b.Run(fmt.Sprintf("gl%g", prop), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				s := &core.Scheme{Cfg: core.Config{GLProportion: prop}}
				res, err := sim.Run(w, s, 8, 2, cm, 3)
				if err != nil {
					b.Fatal(err)
				}
				tput = res.ThroughputOps
			}
			b.ReportMetric(tput, "ops/s")
		})
	}
}

// BenchmarkAblationGLReplicas sweeps the bounded-replication threshold (the
// paper's Sec. VII future-work knob) on the update-heavy RA trace,
// reporting throughput and forwarding hops: fewer replicas cut update cost
// but add forwards and narrow GL load spreading.
func BenchmarkAblationGLReplicas(b *testing.B) {
	w, err := trace.BuildWorkload(trace.RA().Scale(4000), 30000, 7)
	if err != nil {
		b.Fatal(err)
	}
	cm := sim.DefaultCostModel()
	for _, r := range []int{1, 2, 4, 0} { // 0 = replicate everywhere
		name := "all"
		if r > 0 {
			name = "r" + strconv.Itoa(r)
		}
		b.Run(name, func(b *testing.B) {
			var tput, hops float64
			for i := 0; i < b.N; i++ {
				s := &core.Scheme{Cfg: core.Config{GLProportion: 0.01, GLReplicas: r}}
				res, err := sim.Run(w, s, 8, 2, cm, 3)
				if err != nil {
					b.Fatal(err)
				}
				tput, hops = res.ThroughputOps, res.AvgJumps
			}
			b.ReportMetric(tput, "ops/s")
			b.ReportMetric(hops, "hops/op")
		})
	}
}

// --- Micro benches on the hot paths ---

// BenchmarkTreeSplitting measures Alg. 1 on a 20k-node namespace.
func BenchmarkTreeSplitting(b *testing.B) {
	w, err := trace.BuildWorkload(trace.DTR().Scale(20000), 50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SplitProportion(w.Tree, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMirrorDivide measures the allocator on ~2k subtrees.
func BenchmarkMirrorDivide(b *testing.B) {
	w, err := trace.BuildWorkload(trace.LMBE().Scale(20000), 50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	split, err := core.SplitProportion(w.Tree, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	caps := partition.Capacities(32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MirrorDivide(split.Subtrees, caps, core.AllocConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalIndexLocate measures client-side routing lookups.
func BenchmarkLocalIndexLocate(b *testing.B) {
	w, err := trace.BuildWorkload(trace.RA().Scale(10000), 20000, 5)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.New(w.Tree, 16, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	nodes := w.Tree.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Index().Locate(nodes[i%len(nodes)])
	}
}

// BenchmarkReplay measures the simulator's per-event cost.
func BenchmarkReplay(b *testing.B) {
	w, err := trace.BuildWorkload(trace.DTR().Scale(5000), 50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := &core.Scheme{}
	asg, err := s.Partition(w.Tree, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Replay(w.Tree, w.Events, asg, s, sim.DefaultCostModel(), 1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(w.Events)))
}

// BenchmarkReplayWorkers pins the sharded kernel at explicit worker counts
// (w0 = GOMAXPROCS) so the serial/parallel split of the tracked baseline is
// reproducible with plain `go test -bench`.
func BenchmarkReplayWorkers(b *testing.B) {
	w, err := trace.BuildWorkload(trace.DTR().Scale(5000), 50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := &core.Scheme{}
	asg, err := s.Partition(w.Tree, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, wc := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("w%d", wc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.ReplayWorkers(w.Tree, w.Events, asg, s, sim.DefaultCostModel(), 1, wc); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(w.Events)))
		})
	}
}

// BenchmarkCompileRoutes measures the per-round route-table compile — the
// fixed cost the replay kernel's O(1) event loop buys its speed with.
func BenchmarkCompileRoutes(b *testing.B) {
	w, err := trace.BuildWorkload(trace.DTR().Scale(5000), 50000, 5)
	if err != nil {
		b.Fatal(err)
	}
	s := &core.Scheme{}
	asg, err := s.Partition(w.Tree, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.CompileRoutes(w.Tree, asg, s); err != nil {
			b.Fatal(err)
		}
	}
}
