package d2tree_test

import (
	"math"
	"testing"
	"time"

	"d2tree"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow through
// the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	w, err := d2tree.BuildWorkload(d2tree.DTR().Scale(2000), 15000, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := d2tree.New(w.Tree, 8, d2tree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Split().GL) == 0 || len(d.Split().Subtrees) == 0 {
		t.Fatal("empty split")
	}
	res, err := d2tree.Run(w, &d2tree.Scheme{}, 8, 2, d2tree.DefaultCostModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputOps <= 0 || res.Locality <= 0 || res.Balance <= 0 {
		t.Errorf("bad metrics: %+v", res)
	}
	if math.Abs(res.GLQueryFrac-0.83) > 0.08 {
		t.Errorf("GL hit rate %v, want ≈ 0.83", res.GLQueryFrac)
	}
}

// TestPublicAPINamespace builds a namespace by hand through the facade.
func TestPublicAPINamespace(t *testing.T) {
	tr := d2tree.NewNamespace()
	if _, err := tr.AddFile("/a/b/c.txt"); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Lookup("/a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind() != d2tree.KindFile {
		t.Errorf("kind = %v", n.Kind())
	}
	built, err := d2tree.BuildNamespace(d2tree.BuildConfig{
		Nodes: 100, MaxDepth: 4, DirFanout: 2, FilesPerDir: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if built.Len() != 100 {
		t.Errorf("Len = %d", built.Len())
	}
}

// TestPublicAPISplitConstraints drives the explicit L0/U0 splitter.
func TestPublicAPISplitConstraints(t *testing.T) {
	w, err := d2tree.BuildWorkload(d2tree.LMBE().Scale(1000), 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d2tree.Split(w.Tree, d2tree.SplitConfig{
		MaxLocalPopSum: w.Tree.TotalPopularity() * 2, // generous bound
		MaxUpdateCost:  1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InGL(w.Tree.Root().ID()) {
		t.Error("root not in GL")
	}
	prop, err := d2tree.SplitProportion(w.Tree, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(prop.GL) != w.Tree.Len()/20 {
		t.Errorf("|GL| = %d", len(prop.GL))
	}
}

// TestPublicAPIBaselines runs every baseline through the facade aliases.
func TestPublicAPIBaselines(t *testing.T) {
	w, err := d2tree.BuildWorkload(d2tree.RA().Scale(1200), 6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []d2tree.PartitionScheme{
		&d2tree.StaticSubtree{}, &d2tree.DynamicSubtree{},
		&d2tree.DROP{}, &d2tree.AngleCut{},
	}
	for _, s := range schemes {
		res, err := d2tree.Run(w, s, 4, 2, d2tree.DefaultCostModel(), 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Scheme != s.Name() {
			t.Errorf("scheme name %q", res.Scheme)
		}
	}
}

// TestPublicAPICluster boots the networked stack through the facade.
func TestPublicAPICluster(t *testing.T) {
	w, err := d2tree.BuildWorkload(d2tree.LMBE().Scale(600), 3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := d2tree.NewMonitor(w.Tree, d2tree.MonitorConfig{
		Addr: "127.0.0.1:0", Servers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	for i := 0; i < 2; i++ {
		srv := d2tree.NewServer(d2tree.ServerConfig{
			Addr:              "127.0.0.1:0",
			MonitorAddr:       mon.Addr(),
			HeartbeatInterval: 50 * time.Millisecond,
		})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = srv.Close() }()
	}
	c, err := d2tree.ConnectClient(d2tree.ClientConfig{MonitorAddr: mon.Addr(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	e, err := c.Lookup("/")
	if err != nil {
		t.Fatal(err)
	}
	if e.Path != "/" {
		t.Errorf("entry = %+v", e)
	}
}
